open Fdb_core
module Mutation = Fdb_kv.Mutation

let map = Shard_map.build Config.default
let config = Config.default

let test_covers_keyspace () =
  let ranges = Shard_map.ranges map in
  Alcotest.(check string) "starts at empty" "" (fst ranges.(0));
  Alcotest.(check string) "ends at system end" Types.system_key_space_end
    (snd ranges.(Array.length ranges - 1));
  Array.iteri
    (fun i (_, hi) ->
      if i < Array.length ranges - 1 then
        Alcotest.(check string) "contiguous" hi (fst ranges.(i + 1)))
    ranges

let test_team_sizes () =
  Array.iter
    (fun team ->
      Alcotest.(check int) "replication degree" config.Config.storage_replication
        (List.length team);
      Alcotest.(check int) "distinct members" (List.length team)
        (List.length (List.sort_uniq compare team)))
    (Shard_map.tag_teams map)

let test_teams_span_machines () =
  let machine ss = ss / config.Config.storage_per_machine in
  Array.iter
    (fun team ->
      let machines = List.sort_uniq compare (List.map machine team) in
      Alcotest.(check int) "one process per machine" (List.length team)
        (List.length machines))
    (Shard_map.tag_teams map)

let test_key_lookup_consistent () =
  List.iter
    (fun key ->
      let team = Shard_map.team_for_key map key in
      let fragment = Shard_map.shards_for_range map ~from:key ~until:(Types.next_key key) in
      match fragment with
      | [ (_, _, team') ] -> Alcotest.(check (list int)) "same team" team team'
      | _ -> Alcotest.fail "single-key range must be one fragment")
    [ ""; "a"; "hello"; "zzz"; "\x7f\xff"; "\xfe" ]

let test_range_fragments () =
  let fragments = Shard_map.shards_for_range map ~from:"" ~until:Types.key_space_end in
  Alcotest.(check bool) "multiple fragments over whole space" true
    (List.length fragments > 1);
  (* fragments must tile the range *)
  let rec check prev = function
    | [] -> Alcotest.(check bool) "reaches end" true (prev >= Types.key_space_end)
    | (f, u, _) :: rest ->
        Alcotest.(check string) "tiles" prev f;
        Alcotest.(check bool) "non-empty" true (f < u);
        check u rest
  in
  check "" fragments

let test_empty_range () =
  Alcotest.(check int) "empty range" 0
    (List.length (Shard_map.shards_for_range map ~from:"b" ~until:"a"))

let test_tags_for_mutation () =
  let tags = Shard_map.tags_for_mutation map (Mutation.Set ("hello", "v")) in
  Alcotest.(check (list int)) "set tags = its team" (List.sort compare (Shard_map.team_for_key map "hello")) (List.sort compare tags);
  let wide = Shard_map.tags_for_mutation map (Mutation.Clear_range ("", Types.key_space_end)) in
  Alcotest.(check bool) "range clear touches many" true (List.length wide > List.length tags)

let test_explicit_boundaries () =
  let config' = { config with Config.shard_boundaries = [ "m" ] } in
  let m = Shard_map.build config' in
  Alcotest.(check int) "two shards" 2 (Shard_map.shard_count m);
  Alcotest.(check bool) "split at m" true
    (Shard_map.team_for_key m "a" <> Shard_map.team_for_key m "z"
    || Shard_map.team_for_key m "a" = Shard_map.team_for_key m "z")

let test_shards_of_storage_roundtrip () =
  let n = Config.storage_count config in
  for ss = 0 to n - 1 do
    List.iter
      (fun (lo, _) ->
        Alcotest.(check bool) "team contains server" true
          (List.mem ss (Shard_map.team_for_key map lo)))
      (Shard_map.shards_of_storage map ss)
  done

(* ---------- runtime reconfiguration: edge cases ---------- *)

(* split/merge mutators emit trace events, so they need a live engine. *)
let in_engine f =
  Fdb_sim.Engine.run ~seed:1L (fun () ->
      f ();
      Fdb_sim.Future.return ())

let check_tiles m =
  let ranges = Shard_map.ranges m in
  Alcotest.(check string) "starts at empty" "" (fst ranges.(0));
  Alcotest.(check string) "ends at system end" Types.system_key_space_end
    (snd ranges.(Array.length ranges - 1));
  Array.iteri
    (fun i (lo, hi) ->
      Alcotest.(check bool) "non-empty shard" true (lo < hi);
      if i < Array.length ranges - 1 then
        Alcotest.(check string) "contiguous" hi (fst ranges.(i + 1)))
    ranges

(* shards_for_range must agree with per-key lookups before and after every
   reconfiguration. *)
let check_range_agreement m ~from ~until =
  let fragments = Shard_map.shards_for_range m ~from ~until in
  let rec walk prev = function
    | [] -> Alcotest.(check bool) "fragments reach until" true (prev >= until)
    | (f, u, team) :: rest ->
        Alcotest.(check string) "fragments tile" prev f;
        Alcotest.(check (list int)) "fragment team = key lookup" (Shard_map.team_for_key m f) team;
        let lo, hi = Shard_map.shard_range_for_key m f in
        Alcotest.(check bool) "fragment within its shard" true (lo <= f && u <= hi);
        walk u rest
  in
  if from < until then walk from fragments
  else Alcotest.(check int) "empty range" 0 (List.length fragments)

let probe_ranges = [ ("", Types.key_space_end); ("a", "z"); ("k", "k\x00"); ("", "k") ]

let test_split_edge_cases () =
  in_engine @@ fun () ->
  let m = Shard_map.build config in
  let g0 = Shard_map.generation m in
  (* split strictly inside a shard *)
  Alcotest.(check bool) "split at k" true (Result.is_ok (Shard_map.split m ~at:"k"));
  Alcotest.(check bool) "generation bumped" true (Shard_map.generation m > g0);
  (* single-key shard ["k", "k\x00") *)
  Alcotest.(check bool) "split single-key shard off" true
    (Result.is_ok (Shard_map.split m ~at:(Types.next_key "k")));
  let lo, hi = Shard_map.shard_range_for_key m "k" in
  Alcotest.(check string) "single-key lo" "k" lo;
  Alcotest.(check string) "single-key hi" (Types.next_key "k") hi;
  (* splitting at an existing boundary must fail and not bump generation *)
  let g1 = Shard_map.generation m in
  Alcotest.(check bool) "split at boundary rejected" true
    (Result.is_error (Shard_map.split m ~at:"k"));
  Alcotest.(check bool) "split at empty key rejected" true
    (Result.is_error (Shard_map.split m ~at:""));
  Alcotest.(check int) "failed splits do not bump generation" g1 (Shard_map.generation m);
  check_tiles m;
  List.iter (fun (from, until) -> check_range_agreement m ~from ~until) probe_ranges

let test_merge_whole_keyspace () =
  in_engine @@ fun () ->
  let m = Shard_map.build config in
  (* Give every shard the same team so merges are legal, then collapse the
     whole keyspace into one shard. *)
  let team = Shard_map.team_for_key m "" in
  for s = 0 to Shard_map.shard_count m - 1 do
    Shard_map.set_team m ~shard:s ~team
  done;
  let merged = ref true in
  while !merged do
    merged := Result.is_ok (Shard_map.merge_at m ~lo:"")
  done;
  Alcotest.(check int) "whole keyspace is one shard" 1 (Shard_map.shard_count m);
  let lo, hi = Shard_map.shard_range_for_key m "anything" in
  Alcotest.(check string) "lo" "" lo;
  Alcotest.(check string) "hi" Types.system_key_space_end hi;
  Alcotest.(check bool) "merging the last shard fails" true
    (Result.is_error (Shard_map.merge_at m ~lo:""));
  check_tiles m;
  List.iter (fun (from, until) -> check_range_agreement m ~from ~until) probe_ranges;
  (* and the collapsed map can be split again *)
  Alcotest.(check bool) "split after total merge" true
    (Result.is_ok (Shard_map.split m ~at:"m"));
  check_tiles m

(* ---------- qcheck model: the map vs a flat assoc-list reference ---------- *)

module Model = struct
  (* One entry per shard, ascending: (lo, hi, serving team, move dst). *)
  type entry = { lo : string; hi : string; team : int list; dst : int list option }

  let of_map m =
    let ranges = Shard_map.ranges m in
    let teams = Shard_map.tag_teams m in
    List.init (Array.length ranges) (fun i ->
        let lo, hi = ranges.(i) in
        { lo; hi; team = teams.(i); dst = None })

  let split m at =
    let rec go = function
      | [] -> None
      | e :: rest when e.lo < at && at < e.hi ->
          if e.dst <> None then None
          else Some ({ e with hi = at } :: { e with lo = at } :: rest)
      | e :: rest -> Option.map (fun r -> e :: r) (go rest)
    in
    go m

  let merge_at m lo =
    let rec go = function
      | a :: b :: rest when a.lo = lo ->
          if
            List.sort compare a.team = List.sort compare b.team
            && a.dst = None && b.dst = None
          then
            Some ({ a with hi = b.hi } :: rest)
          else None
      | e :: rest -> Option.map (fun r -> e :: r) (go rest)
      | [] -> None
    in
    go m

  let begin_move m lo dst ~n_ss =
    let ok_dst =
      dst <> [] && List.for_all (fun s -> s >= 0 && s < n_ss) dst
    in
    let rec go = function
      | e :: rest when e.lo = lo ->
          if e.dst = None && ok_dst && dst <> List.sort compare e.team then
            Some ({ e with dst = Some dst } :: rest)
          else None
      | e :: rest -> Option.map (fun r -> e :: r) (go rest)
      | [] -> None
    in
    go m

  let commit_move m lo dst =
    let rec go = function
      | e :: rest when e.lo = lo ->
          if e.dst = Some dst then Some ({ e with team = dst; dst = None } :: rest)
          else None
      | e :: rest -> Option.map (fun r -> e :: r) (go rest)
      | [] -> None
    in
    go m

  let abort_move m lo =
    let rec go = function
      | e :: rest when e.lo = lo ->
          if e.dst <> None then Some ({ e with dst = None } :: rest) else None
      | e :: rest -> Option.map (fun r -> e :: r) (go rest)
      | [] -> None
    in
    go m

  let team_for_key m key =
    match List.find_opt (fun e -> e.lo <= key && key < e.hi) m with
    | Some e -> e.team
    | None -> []

  let pending m = List.filter_map (fun e -> Option.map (fun d -> (e.lo, d)) e.dst) m
end

type model_op =
  | Op_split of string
  | Op_merge of int
  | Op_begin of int * int list
  | Op_commit of int
  | Op_abort of int

let gen_model_ops =
  let n_ss = Config.storage_count Config.default in
  QCheck.Gen.(
    let key = map (fun s -> "k" ^ s) (string_size ~gen:(char_range 'a' 'f') (int_range 1 3)) in
    let dst =
      map
        (fun l -> List.sort_uniq compare (List.map (fun i -> i mod n_ss) l))
        (list_size (int_range 1 3) (int_range 0 (2 * n_ss)))
    in
    list_size (int_range 1 60)
      (frequency
         [
           (3, map (fun k -> Op_split k) key);
           (2, map (fun i -> Op_merge i) small_nat);
           (2, map2 (fun i d -> Op_begin (i, d)) small_nat dst);
           (2, map (fun i -> Op_commit i) small_nat);
           (1, map (fun i -> Op_abort i) small_nat);
         ]))

let qcheck_model_agreement =
  let n_ss = Config.storage_count Config.default in
  QCheck.Test.make ~name:"split/merge/move agree with flat reference" ~count:150
    (QCheck.make gen_model_ops) (fun ops ->
      in_engine (fun () ->
          let m = Shard_map.build Config.default in
          let model = ref (Model.of_map m) in
          List.iter
            (fun op ->
              let g0 = Shard_map.generation m in
              let index i = i mod List.length !model in
              let applied =
                match op with
                | Op_split at -> (
                    match Model.split !model at with
                    | Some model' ->
                        Alcotest.(check bool) "split ok" true
                          (Result.is_ok (Shard_map.split m ~at));
                        model := model';
                        true
                    | None ->
                        Alcotest.(check bool) "split rejected" true
                          (Result.is_error (Shard_map.split m ~at));
                        false)
                | Op_merge i -> (
                    let lo = (List.nth !model (index i)).Model.lo in
                    match Model.merge_at !model lo with
                    | Some model' ->
                        Alcotest.(check bool) "merge ok" true
                          (Result.is_ok (Shard_map.merge_at m ~lo));
                        model := model';
                        true
                    | None ->
                        Alcotest.(check bool) "merge rejected" true
                          (Result.is_error (Shard_map.merge_at m ~lo));
                        false)
                | Op_begin (i, dst) -> (
                    let lo = (List.nth !model (index i)).Model.lo in
                    match Model.begin_move !model lo dst ~n_ss with
                    | Some model' ->
                        Alcotest.(check bool) "begin_move ok" true
                          (Result.is_ok (Shard_map.begin_move m ~lo ~dst));
                        model := model';
                        true
                    | None ->
                        Alcotest.(check bool) "begin_move rejected" true
                          (Result.is_error (Shard_map.begin_move m ~lo ~dst));
                        false)
                | Op_commit i -> (
                    let e = List.nth !model (index i) in
                    let lo = e.Model.lo in
                    let dst = match e.Model.dst with Some d -> d | None -> [ 0 ] in
                    match Model.commit_move !model lo dst with
                    | Some model' ->
                        Alcotest.(check bool) "commit_move ok" true
                          (Result.is_ok (Shard_map.commit_move m ~lo ~dst));
                        model := model';
                        true
                    | None ->
                        Alcotest.(check bool) "commit_move rejected" true
                          (Result.is_error (Shard_map.commit_move m ~lo ~dst));
                        false)
                | Op_abort i -> (
                    let lo = (List.nth !model (index i)).Model.lo in
                    match Model.abort_move !model lo with
                    | Some model' ->
                        Alcotest.(check bool) "abort_move ok" true
                          (Result.is_ok (Shard_map.abort_move m ~lo));
                        model := model';
                        true
                    | None ->
                        Alcotest.(check bool) "abort_move rejected" true
                          (Result.is_error (Shard_map.abort_move m ~lo));
                        false)
              in
              (* generation: bumped exactly when the op landed *)
              if applied then
                Alcotest.(check bool) "generation bumped" true (Shard_map.generation m > g0)
              else Alcotest.(check int) "generation unchanged" g0 (Shard_map.generation m);
              (* boundaries: coverage and non-overlap, and equal to the model *)
              check_tiles m;
              Alcotest.(check (list (pair string string)))
                "boundaries match model"
                (List.map (fun e -> (e.Model.lo, e.Model.hi)) !model)
                (Array.to_list (Shard_map.ranges m));
              (* serving teams at probe keys *)
              List.iter
                (fun key ->
                  Alcotest.(check (list int))
                    ("team at " ^ key)
                    (Model.team_for_key !model key)
                    (Shard_map.team_for_key m key))
                [ ""; "a"; "kaa"; "kcc"; "kff"; "z"; "\xfe" ];
              (* pending moves agree *)
              Alcotest.(check (list (pair string (list int))))
                "pending moves match model" (Model.pending !model)
                (List.map (fun (lo, _, d, _) -> (lo, d)) (Shard_map.pending_moves m)))
            ops);
      true)

let suite =
  [
    Alcotest.test_case "covers keyspace" `Quick test_covers_keyspace;
    Alcotest.test_case "team sizes" `Quick test_team_sizes;
    Alcotest.test_case "teams span machines" `Quick test_teams_span_machines;
    Alcotest.test_case "key lookup consistent" `Quick test_key_lookup_consistent;
    Alcotest.test_case "range fragments tile" `Quick test_range_fragments;
    Alcotest.test_case "empty range" `Quick test_empty_range;
    Alcotest.test_case "tags for mutation" `Quick test_tags_for_mutation;
    Alcotest.test_case "explicit boundaries" `Quick test_explicit_boundaries;
    Alcotest.test_case "shards_of_storage roundtrip" `Quick test_shards_of_storage_roundtrip;
    Alcotest.test_case "split edge cases" `Quick test_split_edge_cases;
    Alcotest.test_case "merge whole keyspace" `Quick test_merge_whole_keyspace;
    QCheck_alcotest.to_alcotest qcheck_model_agreement;
  ]
