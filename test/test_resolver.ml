(* Direct Resolver unit tests: Algorithm 1 verdicts, within-batch conflicts,
   out-of-order batch parking, duplicate replay, range partitioning. *)

open Fdb_sim
open Fdb_core
open Future.Syntax

let mini_ctx () =
  let net : Message.t Network.t = Network.create () in
  {
    Context.net;
    config = Config.test_small;
    shard_map = Shard_map.build Config.test_small;
    coordinator_eps = [];
    worker_eps = [||];
    storage_eps = [||];
    metrics = Fdb_obs.Registry.create ();
  }

let setup ?(range = ("", Types.system_key_space_end)) () =
  let ctx = mini_ctx () in
  let machine = Process.fresh_machine 1 in
  let proc = Process.create ~name:"resolver-test" machine in
  let client = Process.create ~name:"proxy-test" machine in
  let _, ep = Resolver.create ctx proc ~epoch:1 ~range ~start_lsn:0L in
  let resolve_raw lsn prev txns =
    Context.rpc ctx ~timeout:5.0 ~from:client ep
      (Message.Resolve_req
         { rs_epoch = 1; rs_lsn = lsn; rs_prev = prev; rs_txns = Array.of_list txns })
  in
  let resolve lsn prev txns =
    let* reply = resolve_raw lsn prev txns in
    match reply with
    | Message.Resolve_reply v -> Future.return (Array.to_list v)
    | _ -> Future.fail Exit
  in
  (resolve, resolve_raw)

let single_key k = (k, Types.next_key k)

let test_no_conflict_then_conflict () =
  let r =
    Engine.run (fun () ->
        let resolve, _ = setup () in
        (* t1 writes k at version 10. *)
        let* v1 = resolve 10L 0L [ (5L, [], [ single_key "k" ]) ] in
        (* t2 read k at rv=5 (before the write committed) -> conflict;
           t3 read k at rv=15 (after) -> commit. *)
        let* v2 = resolve 20L 10L [ (5L, [ single_key "k" ], []) ] in
        let* v3 = resolve 30L 20L [ (15L, [ single_key "k" ], []) ] in
        Future.return (v1, v2, v3))
  in
  let v1, v2, v3 = r in
  Alcotest.(check bool) "write admitted" true (v1 = [ Message.V_commit ]);
  Alcotest.(check bool) "stale read conflicts" true (v2 = [ Message.V_conflict ]);
  Alcotest.(check bool) "fresh read commits" true (v3 = [ Message.V_commit ])

let test_within_batch_conflict () =
  let r =
    Engine.run (fun () ->
        let resolve, _ = setup () in
        (* Same batch: t1 writes k; t2 (later in batch) read k at an older
           rv — the paper's Algorithm 1 applies writes between checks. *)
        let* v =
          resolve 10L 0L
            [ (5L, [], [ single_key "k" ]); (5L, [ single_key "k" ], []) ]
        in
        Future.return v)
  in
  Alcotest.(check bool) "later txn sees earlier batch write" true
    (r = [ Message.V_commit; Message.V_conflict ])

let test_out_of_order_batches_park () =
  let r =
    Engine.run (fun () ->
        let resolve, _ = setup () in
        let late = resolve 20L 10L [ (15L, [ single_key "k" ], []) ] in
        let* () = Engine.sleep 0.01 in
        Alcotest.(check bool) "parked until chain fills" true (Future.is_pending late);
        let* _ = resolve 10L 0L [ (5L, [], [ single_key "k" ]) ] in
        late)
  in
  Alcotest.(check bool) "processed after predecessor" true (r = [ Message.V_commit ])

let test_duplicate_park_rejected () =
  let r =
    Engine.run (fun () ->
        let _, resolve_raw = setup () in
        (* Two deliveries waiting on the same missing predecessor: the first
           parks; the reordered duplicate must be rejected rather than
           overwrite the parked promise (which would strand the first waiter
           forever — the lost-wakeup bug). *)
        let late = resolve_raw 20L 10L [ (15L, [ single_key "k" ], []) ] in
        let* () = Engine.sleep 0.01 in
        let* dup_rejected =
          Future.catch
            (fun () ->
              let* _ = resolve_raw 20L 10L [ (15L, [ single_key "k" ], []) ] in
              Future.return false)
            (function
              | Error.Fdb (Error.Internal _) -> Future.return true
              | e -> Future.fail e)
        in
        let dups_traced = Trace.count "resolver_park_dup" in
        (* The original parked batch still completes once the chain fills. *)
        let* _ = resolve_raw 10L 0L [ (5L, [], [ single_key "k" ]) ] in
        let* late = late in
        let late_ok =
          match late with
          | Message.Resolve_reply v -> Array.to_list v = [ Message.V_commit ]
          | _ -> false
        in
        Future.return (dup_rejected, dups_traced, late_ok))
  in
  let dup_rejected, dups_traced, late_ok = r in
  Alcotest.(check bool) "duplicate park rejected" true dup_rejected;
  Alcotest.(check int) "resolver_park_dup traced" 1 dups_traced;
  Alcotest.(check bool) "original waiter still woken" true late_ok

let test_duplicate_replay_same_verdict () =
  let r =
    Engine.run (fun () ->
        let resolve, _ = setup () in
        let txns = [ (5L, [], [ single_key "k" ]) ] in
        let* v1 = resolve 10L 0L txns in
        let* v2 = resolve 10L 0L txns in
        Future.return (v1 = v2))
  in
  Alcotest.(check bool) "cached verdict replayed" true r

let test_range_partition_ignores_foreign_keys () =
  let r =
    Engine.run (fun () ->
        (* Resolver owns only [m, z): conflicts on "a" are not its job. *)
        let resolve, _ = setup ~range:("m", "z") () in
        let* _ = resolve 10L 0L [ (5L, [], [ single_key "a" ]) ] in
        let* v = resolve 20L 10L [ (5L, [ single_key "a" ], []) ] in
        Future.return v)
  in
  Alcotest.(check bool) "foreign range clipped away" true (r = [ Message.V_commit ])

let test_blind_write_never_too_old () =
  let r =
    Engine.run (fun () ->
        let resolve, _ = setup () in
        (* Push the window far ahead, then a blind write with rv=0. *)
        let* _ = resolve 20_000_000L 0L [ (19_000_000L, [], [ single_key "k" ]) ] in
        let* () = Engine.sleep 2.0 in
        (* expiry loop has raised the floor past 0 *)
        let* v = resolve 20_000_010L 20_000_000L [ (0L, [], [ single_key "j" ]) ] in
        let* v2 = resolve 20_000_020L 20_000_010L [ (0L, [ single_key "j" ], []) ] in
        Future.return (v, v2))
  in
  Alcotest.(check bool) "blind write commits" true (fst r = [ Message.V_commit ]);
  Alcotest.(check bool) "ancient read is too old" true (snd r = [ Message.V_too_old ])

let suite =
  [
    Alcotest.test_case "conflict detection" `Quick test_no_conflict_then_conflict;
    Alcotest.test_case "within-batch conflict" `Quick test_within_batch_conflict;
    Alcotest.test_case "out-of-order parking" `Quick test_out_of_order_batches_park;
    Alcotest.test_case "duplicate park rejected" `Quick test_duplicate_park_rejected;
    Alcotest.test_case "duplicate replay" `Quick test_duplicate_replay_same_verdict;
    Alcotest.test_case "range partitioning" `Quick test_range_partition_ignores_foreign_keys;
    Alcotest.test_case "blind writes vs window floor" `Quick test_blind_write_never_too_old;
  ]
