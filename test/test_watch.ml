(* Client watches (paper §1's "watch" primitive): version-carrying
   long-polls against the storage servers. Fires exactly once per
   triggering commit, stays silent on idle keys across poll-timeout
   re-registrations, survives shard moves of the watched key, is
   cancelled (not leaked) when the arming transaction aborts or the
   client process dies. *)

open Fdb_sim
open Fdb_core
open Future.Syntax

let with_cluster ?(seed = 71L) body =
  Engine.run ~seed ~max_time:1e5 (fun () ->
      let cluster = Cluster.create ~config:Config.test_small () in
      let* () = Cluster.wait_ready cluster in
      body cluster)

let write db k v =
  Client.run db (fun tx ->
      Client.set tx k v;
      Future.return ())

(* Arm a watch inside a committed transaction and return it. *)
let arm db k =
  Client.run db (fun tx ->
      let* _ = Client.get tx k in
      Future.return (Client.watch tx k))

let await_fire ?(timeout = 60.0) w =
  Future.catch
    (fun () ->
      let* () = Engine.timeout timeout (Client.watch_future w) in
      Future.return true)
    (function Engine.Timed_out -> Future.return false | e -> Future.fail e)

(* ---------- silence on idle keys, a fire per triggering commit ------- *)

let test_fires_once_not_spuriously () =
  let fired_while_idle, fired_after_write =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"watcher" in
        let wdb = Cluster.client cluster ~name:"writer" in
        let* () = write wdb "watch/k" "v0" in
        let* w = arm db "watch/k" in
        (* Long idle stretch: several watch-poll timeouts elapse, so the
           client re-registers repeatedly; none of that may fire it. *)
        let* () = Engine.sleep 12.0 in
        let fired_while_idle = Future.is_resolved (Client.watch_future w) in
        let* () = write wdb "watch/k" "v1" in
        let* fired_after_write = await_fire w in
        Future.return (fired_while_idle, fired_after_write))
  in
  Alcotest.(check bool) "silent over 12 idle seconds" false fired_while_idle;
  Alcotest.(check bool) "fires after the triggering commit" true fired_after_write

(* ---------- the arming transaction's own write does not self-fire ---- *)

let test_own_commit_does_not_self_trigger () =
  let self_fired, later_fired =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"watcher" in
        let wdb = Cluster.client cluster ~name:"writer" in
        let* w =
          Client.run db (fun tx ->
              Client.set tx "watch/self" "mine";
              Future.return (Client.watch tx "watch/self"))
        in
        let* () = Engine.sleep 8.0 in
        let self_fired = Future.is_resolved (Client.watch_future w) in
        let* () = write wdb "watch/self" "theirs" in
        let* later_fired = await_fire w in
        Future.return (self_fired, later_fired))
  in
  Alcotest.(check bool) "own commit is the watch's base version" false self_fired;
  Alcotest.(check bool) "a later commit fires it" true later_fired

(* ---------- abort cancels; cancel resolves; nothing leaks ------------ *)

let test_aborted_tx_cancels_watch () =
  let cancelled =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"watcher" in
        let wdb = Cluster.client cluster ~name:"rival" in
        let* () = write wdb "watch/c" "v0" in
        (* Raw transaction so the conflict is not retried away. *)
        let tx = Client.begin_tx db in
        let* _ = Client.get tx "watch/c" in
        let w = Client.watch tx "watch/c" in
        let* () = write wdb "watch/c" "rival" in
        Client.set tx "watch/c" "mine";
        let* commit_failed =
          Future.catch
            (fun () ->
              let* _ = Client.commit tx in
              Future.return false)
            (function Error.Fdb _ -> Future.return true | e -> Future.fail e)
        in
        let* cancelled =
          Future.catch
            (fun () ->
              let* () = Client.watch_future w in
              Future.return false)
            (function
              | Future.Cancelled _ -> Future.return true
              | _ -> Future.return false)
        in
        Future.return (commit_failed && cancelled))
  in
  Alcotest.(check bool) "conflicted commit breaks the watch" true cancelled;
  Alcotest.(check int) "no leaked promises" 0
    (Future.Lifecycle.total_leaks (Engine.last_run_lifecycle ()))

let test_cancel_watch () =
  let outcome =
    with_cluster (fun cluster ->
        let db = Cluster.client cluster ~name:"watcher" in
        let wdb = Cluster.client cluster ~name:"writer" in
        let* () = write wdb "watch/x" "v0" in
        let* w = arm db "watch/x" in
        let* () = Engine.sleep 0.5 in
        Client.cancel_watch w;
        let* cancelled =
          Future.catch
            (fun () ->
              let* () = Client.watch_future w in
              Future.return false)
            (function
              | Future.Cancelled _ -> Future.return true
              | _ -> Future.return false)
        in
        (* Give the long-poll fiber time to observe the cancel and wind
           down before the run ends. *)
        let* () = Engine.sleep (!Params.watch_poll_timeout +. 2.0) in
        Future.return cancelled)
  in
  Alcotest.(check bool) "cancel breaks the watch future" true outcome;
  Alcotest.(check int) "no leaked promises" 0
    (Future.Lifecycle.total_leaks (Engine.last_run_lifecycle ()))

(* ---------- the client process dies mid-watch ------------------------ *)

let test_client_death_leaks_nothing () =
  let armed =
    with_cluster (fun cluster ->
        let setup = Cluster.client cluster ~name:"setup" in
        let* () = write setup "watch/d" "v0" in
        let machine = Process.fresh_machine ~dc:"dc1" 920_000 in
        let proc = Process.create ~name:"doomed-watcher" machine in
        let db = Client.create_db (Cluster.context cluster) proc in
        (* Arm from a fiber on the doomed process and only report through
           refs: awaiting its future directly would leave this test's
           continuation owned by the process we are about to kill. *)
        let armed = ref false in
        let ready = ref false in
        Engine.spawn ~process:proc "doomed-watch-arm" (fun () ->
            let* w = arm db "watch/d" in
            armed := not (Future.is_resolved (Client.watch_future w));
            ready := true;
            Future.return ());
        let rec wait n =
          if !ready || n = 0 then Future.return ()
          else
            let* () = Engine.sleep 0.5 in
            wait (n - 1)
        in
        let* () = wait 120 in
        Engine.kill proc;
        (* Long enough for the server-side registration to time out and be
           reaped after the client is gone. *)
        let* () = Engine.sleep (!Params.watch_poll_timeout +. 5.0) in
        Future.return !armed)
  in
  Alcotest.(check bool) "watch was armed before the kill" true armed;
  Alcotest.(check int) "no leaked promises after client death" 0
    (Future.Lifecycle.total_leaks (Engine.last_run_lifecycle ()))

(* ---------- the watched key's shard moves under the watch ------------ *)

let test_watch_survives_shard_move () =
  let team_changed, fired =
    with_cluster ~seed:73L (fun cluster ->
        let db = Cluster.client cluster ~name:"watcher" in
        let wdb = Cluster.client cluster ~name:"writer" in
        let mdb = Cluster.client cluster ~name:"mover" in
        let key = "mv/watched" in
        let* () = write wdb key "v0" in
        let* w = arm db key in
        let ctx = Cluster.context cluster in
        let sm = ctx.Context.shard_map in
        let lo, _ = Shard_map.shard_range_for_key sm key in
        let src = Shard_map.team_for_key sm key in
        let n_ss = Array.length ctx.Context.storage_eps in
        let missing =
          List.filter (fun s -> not (List.mem s src)) (List.init n_ss Fun.id)
        in
        let dst = List.sort compare (List.hd missing :: List.tl src) in
        let machine = Process.fresh_machine ~dc:"dc1" 920_001 in
        let proc = Process.create ~name:"watch-mover" machine in
        let* res = Data_distributor.move_shard ctx ~proc ~db:mdb ~lo ~dst in
        (match res with
        | Ok () -> ()
        | Error m -> failwith ("move failed: " ^ m));
        let team_changed = Shard_map.team_for_key sm key = dst in
        (* Let the watch re-resolve onto the new team, then trigger it. *)
        let* () = Engine.sleep (!Params.watch_poll_timeout +. 1.0) in
        let* () = write wdb key "v1" in
        let* fired = await_fire w in
        Future.return (team_changed, fired))
  in
  Alcotest.(check bool) "shard actually moved" true team_changed;
  Alcotest.(check bool) "watch fires across the move" true fired

let suite =
  [
    Alcotest.test_case "silent when idle, fires on commit" `Quick
      test_fires_once_not_spuriously;
    Alcotest.test_case "own commit does not self-trigger" `Quick
      test_own_commit_does_not_self_trigger;
    Alcotest.test_case "aborted transaction cancels watch" `Quick
      test_aborted_tx_cancels_watch;
    Alcotest.test_case "cancel_watch resolves and reaps" `Quick test_cancel_watch;
    Alcotest.test_case "client death leaks nothing" `Quick
      test_client_death_leaks_nothing;
    Alcotest.test_case "watch survives shard move" `Quick
      test_watch_survives_shard_move;
  ]
