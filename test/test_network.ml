open Fdb_sim
open Future.Syntax

type msg = Ping of int | Pong of int

let setup () =
  let net : msg Network.t = Network.create () in
  let m1 = Process.fresh_machine ~dc:"dc1" 1 in
  let m2 = Process.fresh_machine ~dc:"dc1" 2 in
  let client = Process.create ~name:"client" m1 in
  let server = Process.create ~name:"server" m2 in
  let ep = Network.fresh_endpoint net in
  Network.register net ep server (function
    | Ping n -> Future.return (Pong (n + 1))
    | Pong _ -> Future.fail Exit);
  (net, client, server, ep)

let test_rpc_roundtrip () =
  let r =
    Engine.run (fun () ->
        let net, client, _server, ep = setup () in
        let* reply = Network.call net ~from:client ep (Ping 1) in
        match reply with
        | Pong n -> Future.return (n, Engine.now ())
        | Ping _ -> Alcotest.fail "wrong reply")
  in
  Alcotest.(check int) "incremented" 2 (fst r);
  Alcotest.(check bool) "took nonzero simulated time" true (snd r > 0.0);
  Alcotest.(check bool) "intra-dc fast" true (snd r < 0.01)

let expect_timeout fut =
  Future.catch
    (fun () -> Future.map fut (fun _ -> false))
    (function Engine.Timed_out -> Future.return true | e -> raise e)

let test_rpc_timeout_on_partition () =
  let r =
    Engine.run (fun () ->
        let net, client, server, ep = setup () in
        Network.partition net ~from:client.Process.machine.Process.machine_id
          ~to_:server.Process.machine.Process.machine_id;
        expect_timeout (Network.call net ~timeout:1.0 ~from:client ep (Ping 1)))
  in
  Alcotest.(check bool) "timed out" true r

let test_one_way_partition_also_times_out () =
  (* Reply path blocked: request arrives, response cannot return. *)
  let r =
    Engine.run (fun () ->
        let net, client, server, ep = setup () in
        Network.partition net ~from:server.Process.machine.Process.machine_id
          ~to_:client.Process.machine.Process.machine_id;
        expect_timeout (Network.call net ~timeout:1.0 ~from:client ep (Ping 1)))
  in
  Alcotest.(check bool) "timed out" true r

let test_heal_restores () =
  let r =
    Engine.run (fun () ->
        let net, client, server, ep = setup () in
        let cm = client.Process.machine.Process.machine_id in
        let sm = server.Process.machine.Process.machine_id in
        Network.partition net ~from:cm ~to_:sm;
        let* timed_out = expect_timeout (Network.call net ~timeout:0.5 ~from:client ep (Ping 1)) in
        Network.heal net ~from:cm ~to_:sm;
        let* reply = Network.call net ~from:client ep (Ping 5) in
        match reply with
        | Pong n -> Future.return (timed_out, n)
        | Ping _ -> Alcotest.fail "wrong reply")
  in
  Alcotest.(check (pair bool int)) "healed" (true, 6) r

let test_dead_server_times_out () =
  let r =
    Engine.run (fun () ->
        let net, client, server, ep = setup () in
        Engine.kill server;
        expect_timeout (Network.call net ~timeout:1.0 ~from:client ep (Ping 1)))
  in
  Alcotest.(check bool) "timed out" true r

let test_rebooted_server_needs_reregistration () =
  let r =
    Engine.run (fun () ->
        let net, client, server, ep = setup () in
        server.Process.boot <- (fun () ->
            Network.register net ep server (function
              | Ping n -> Future.return (Pong (n + 100))
              | Pong _ -> Future.fail Exit));
        Engine.reboot server ~delay:0.1 ();
        let* () = Engine.sleep 0.5 in
        let* reply = Network.call net ~from:client ep (Ping 1) in
        match reply with
        | Pong n -> Future.return n
        | Ping _ -> Alcotest.fail "wrong reply")
  in
  Alcotest.(check int) "new incarnation handler" 101 r

let test_loss_causes_timeouts () =
  let r =
    Engine.run (fun () ->
        let net, client, _server, ep = setup () in
        Network.set_loss_prob net 1.0;
        expect_timeout (Network.call net ~timeout:0.5 ~from:client ep (Ping 1)))
  in
  Alcotest.(check bool) "lost" true r

let test_clog_delays () =
  let r =
    Engine.run (fun () ->
        let net, client, server, ep = setup () in
        Network.clog_machine net server.Process.machine.Process.machine_id
          (Engine.now () +. 2.0);
        let t0 = Engine.now () in
        let* _ = Network.call net ~timeout:10.0 ~from:client ep (Ping 1) in
        Future.return (Engine.now () -. t0))
  in
  Alcotest.(check bool) "delayed by clog" true (r >= 2.0)

let test_cross_dc_latency () =
  let r =
    Engine.run (fun () ->
        let net : msg Network.t = Network.create () in
        let m1 = Process.fresh_machine ~dc:"east" 1 in
        let m2 = Process.fresh_machine ~dc:"west" 2 in
        Network.set_dc_latency net "east" "west" 0.06;
        let client = Process.create m1 in
        let server = Process.create m2 in
        let ep = Network.fresh_endpoint net in
        Network.register net ep server (fun m -> Future.return m);
        let t0 = Engine.now () in
        let* _ = Network.call net ~timeout:10.0 ~from:client ep (Ping 0) in
        Future.return (Engine.now () -. t0))
  in
  Alcotest.(check bool) "round trip >= 2x WAN" true (r >= 0.12)

let test_send_one_way () =
  let r =
    Engine.run (fun () ->
        let net : msg Network.t = Network.create () in
        let m = Process.fresh_machine 1 in
        let client = Process.create m in
        let server = Process.create m in
        let got = ref 0 in
        let ep = Network.fresh_endpoint net in
        Network.register net ep server (function
          | Ping n ->
              got := n;
              Future.return (Pong n)
          | Pong _ -> Future.fail Exit);
        Network.send net ~from:client ep (Ping 9);
        let* () = Engine.sleep 0.1 in
        Future.return !got)
  in
  Alcotest.(check int) "delivered" 9 r

let suite =
  [
    Alcotest.test_case "rpc roundtrip" `Quick test_rpc_roundtrip;
    Alcotest.test_case "timeout on partition" `Quick test_rpc_timeout_on_partition;
    Alcotest.test_case "one-way partition" `Quick test_one_way_partition_also_times_out;
    Alcotest.test_case "heal restores" `Quick test_heal_restores;
    Alcotest.test_case "dead server times out" `Quick test_dead_server_times_out;
    Alcotest.test_case "reboot reregistration" `Quick test_rebooted_server_needs_reregistration;
    Alcotest.test_case "loss" `Quick test_loss_causes_timeouts;
    Alcotest.test_case "clog delays" `Quick test_clog_delays;
    Alcotest.test_case "cross-dc latency" `Quick test_cross_dc_latency;
    Alcotest.test_case "one-way send" `Quick test_send_one_way;
  ]
