(* Property test for the client's read-your-writes machinery: a random
   sequence of sets / clears / range clears / atomic adds interleaved with
   reads, executed inside ONE transaction against a live simulated cluster,
   must agree with a plain Map model at every read — and the database state
   after commit must equal the model. This exercises the write-buffer
   overlay, cleared-range masking, atomic composition, and range merging. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng
module M = Map.Make (String)

let keys = Array.init 12 (fun i -> Printf.sprintf "ryw/%02d" i)
let le_bytes i = String.init 8 (fun b -> Char.chr ((i lsr (8 * b)) land 0xff))

type op =
  | Set of int * string
  | Clear of int
  | Clear_range of int * int
  | Add of int * int
  | Get of int
  | Get_range of int * int

let random_op rng =
  match Rng.int rng 6 with
  | 0 -> Set (Rng.int rng 12, Rng.alphanum rng 4)
  | 1 -> Clear (Rng.int rng 12)
  | 2 ->
      let a = Rng.int rng 12 and b = Rng.int rng 12 in
      Clear_range (min a b, max a b)
  | 3 -> Add (Rng.int rng 12, 1 + Rng.int rng 5)
  | 4 -> Get (Rng.int rng 12)
  | _ ->
      let a = Rng.int rng 12 and b = Rng.int rng 12 in
      Get_range (min a b, max a b)

let apply_model model = function
  | Set (i, v) -> M.add keys.(i) v model
  | Clear i -> M.remove keys.(i) model
  | Clear_range (a, b) ->
      M.filter (fun k _ -> not (keys.(a) <= k && k < keys.(b))) model
  | Add (i, n) -> (
      (* Same semantics as the storage server: zero-padded little-endian
         addition over whatever bytes are there (unit-tested separately). *)
      let old_value = M.find_opt keys.(i) model in
      match Fdb_kv.Mutation.atomic_result Fdb_kv.Mutation.Add ~old_value (le_bytes n) with
      | Some v -> M.add keys.(i) v model
      | None -> M.remove keys.(i) model)
  | Get _ | Get_range _ -> model

let run_sequence db ops initial =
  Client.run db (fun tx ->
      let model = ref initial in
      let rec go = function
        | [] -> Future.return true
        | op :: rest -> (
            match op with
            | Set (i, v) ->
                Client.set tx keys.(i) v;
                model := apply_model !model op;
                go rest
            | Clear i ->
                Client.clear tx keys.(i);
                model := apply_model !model op;
                go rest
            | Clear_range (a, b) ->
                Client.clear_range tx ~from:keys.(a) ~until:keys.(b);
                model := apply_model !model op;
                go rest
            | Add (i, n) ->
                Client.atomic_op tx Fdb_kv.Mutation.Add keys.(i) (le_bytes n);
                model := apply_model !model op;
                go rest
            | Get i ->
                let* v = Client.get tx keys.(i) in
                let expected = M.find_opt keys.(i) !model in
                if v = expected then go rest
                else begin
                  Printf.printf "GET %s: got %s, model %s\n" keys.(i)
                    (Option.value v ~default:"<none>")
                    (Option.value expected ~default:"<none>");
                  Future.return false
                end
            | Get_range (a, b) ->
                let* rows = Client.get_range tx ~from:keys.(a) ~until:keys.(b) () in
                let expected =
                  M.bindings !model
                  |> List.filter (fun (k, _) -> keys.(a) <= k && k < keys.(b))
                in
                if rows = expected then go rest
                else begin
                  Printf.printf "GET_RANGE [%s,%s): got %d rows, model %d\n" keys.(a)
                    keys.(b) (List.length rows) (List.length expected);
                  Future.return false
                end)
      in
      let* ok = go ops in
      Future.return (ok, !model))

let check_final db model =
  Client.run db (fun tx ->
      let* rows = Client.get_range tx ~limit:100 ~from:"ryw/" ~until:"ryw0" () in
      Future.return (rows = M.bindings model))

let test_random_sequences () =
  let failures =
    Engine.run ~seed:91L ~max_time:1e5 (fun () ->
        let cluster = Cluster.create ~config:Config.test_small () in
        let* () = Cluster.wait_ready cluster in
        let db = Cluster.client cluster ~name:"ryw" in
        let rng = Engine.fork_rng () in
        let rec trial n failures model =
          if n = 0 then Future.return failures
          else begin
            let ops = List.init (5 + Rng.int rng 25) (fun _ -> random_op rng) in
            let* ok, model2 = run_sequence db ops model in
            let* final_ok = check_final db model2 in
            let failures =
              failures
              @ (if ok then [] else [ Printf.sprintf "trial %d: in-tx read mismatch" n ])
              @
              if final_ok then [] else [ Printf.sprintf "trial %d: committed state mismatch" n ]
            in
            trial (n - 1) failures model2
          end
        in
        trial 40 [] M.empty)
  in
  Alcotest.(check (list string)) "all trials agree with the model" [] failures

let test_snapshot_vs_default_reads () =
  (* snapshot reads must also see own writes, just without conflicts. *)
  let r =
    Engine.run ~seed:92L ~max_time:1e4 (fun () ->
        let cluster = Cluster.create ~config:Config.test_small () in
        let* () = Cluster.wait_ready cluster in
        let db = Cluster.client cluster ~name:"snap" in
        Client.run db (fun tx ->
            Client.set tx "sk" "mine";
            let* v = Client.get ~snapshot:true tx "sk" in
            Future.return v))
  in
  Alcotest.(check (option string)) "snapshot RYW" (Some "mine") r

let suite =
  [
    Alcotest.test_case "random op sequences match model" `Quick test_random_sequences;
    Alcotest.test_case "snapshot reads see own writes" `Quick test_snapshot_vs_default_reads;
  ]
