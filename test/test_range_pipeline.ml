(* The range-read pipeline and selector/streaming client API:

   - qcheck model tests: key-selector resolution ([Client.get_key]) against
     a pure sorted-list model, on both the storage path (clean transaction)
     and the RYW path (buffered sets/clears in the transaction);
   - qcheck model test: continuation-stitched [get_range_stream] against a
     reference assoc list, with the per-round-trip byte budget shrunk so a
     single scan is forced through many stitched batches, RYW merge
     included;
   - a failover scenario under buggified storage replies: reads must
     return identical data while replicas fail over transparently;
   - the shard-map-change regression: a range read straddling a
     [Shard_map.set_team] mid-flight must re-resolve and return the full
     result rather than silently truncating or failing;
   - transaction options ([tx_options]) plumbing. *)

open Fdb_sim
open Fdb_core
open Future.Syntax
module Rng = Fdb_util.Det_rng
module M = Map.Make (String)

let key i = Printf.sprintf "rp/%03d" i
let value i = Printf.sprintf "v%04d" i

let with_cluster ?(seed = 11L) ?(buggify = false) ?(config = Config.test_small)
    body =
  Engine.run ~seed ~max_time:1e5 ~buggify (fun () ->
      let cluster = Cluster.create ~config () in
      let* () = Cluster.wait_ready cluster in
      body cluster)

let populate db present =
  let rec batches = function
    | [] -> Future.return ()
    | chunk ->
        let now, rest =
          if List.length chunk <= 100 then (chunk, [])
          else (List.filteri (fun i _ -> i < 100) chunk,
                List.filteri (fun i _ -> i >= 100) chunk)
        in
        let* _ =
          Client.run db (fun tx ->
              List.iter (fun i -> Client.set tx (key i) (value i)) now;
              Future.return ())
        in
        batches rest
  in
  batches present

(* ---------- selector model ---------- *)

(* The reference: index of the last key <=/< sel_key, moved sel_offset
   keys forward, clamped to ""/key_space_end off the ends. *)
let model_resolve sorted_keys (sel : Client.Key_selector.t) =
  let arr = Array.of_list sorted_keys in
  let n = Array.length arr in
  let base = ref (-1) in
  Array.iteri
    (fun i k ->
      if (if sel.sel_or_equal then k <= sel.sel_key else k < sel.sel_key) then
        base := i)
    arr;
  let i = !base + sel.sel_offset in
  if i < 0 then "" else if i >= n then Types.key_space_end else arr.(i)

(* Candidate anchor keys: on-grid, just off-grid, before-all, after-all. *)
let anchor_of_int i =
  match i mod 4 with
  | 0 -> key (i mod 50)
  | 1 -> key (i mod 50) ^ "!"
  | 2 -> "rp/"
  | _ -> "rp/~~~"

let selector_of (anchor, or_equal, offset) =
  { Client.Key_selector.sel_key = anchor_of_int anchor;
    sel_or_equal = or_equal;
    sel_offset = offset }

let gen_selector_case =
  QCheck.Gen.(
    pair
      (list_size (int_range 3 25) (int_range 0 49)) (* present key ids *)
      (list_size (int_range 5 20)
         (triple (int_range 0 199) bool (int_range (-4) 4))))

let qcheck_selector_storage =
  QCheck.Test.make ~name:"get_key matches selector model (storage path)"
    ~count:6 (QCheck.make gen_selector_case)
    (fun (present, sels) ->
      let present = List.sort_uniq compare present in
      let sorted = List.map key present in
      with_cluster (fun cluster ->
          let db = Cluster.client cluster ~name:"sel" in
          let* () = populate db present in
          Client.run db (fun tx ->
              let rec go = function
                | [] -> Future.return true
                | spec :: rest ->
                    let sel = selector_of spec in
                    let* k = Client.get_key tx sel in
                    let expected = model_resolve sorted sel in
                    if k = expected then go rest
                    else begin
                      Printf.printf
                        "selector {%S or_equal=%b offset=%d}: got %S, model %S\n"
                        sel.Client.Key_selector.sel_key sel.sel_or_equal
                        sel.sel_offset k expected;
                      Future.return false
                    end
              in
              go sels)))

let qcheck_selector_ryw =
  QCheck.Test.make ~name:"get_key matches selector model (RYW path)" ~count:6
    (QCheck.make
       QCheck.Gen.(
         triple gen_selector_case
           (list_size (int_range 1 8) (int_range 50 80)) (* extra buffered sets *)
           (list_size (int_range 1 8) (int_range 0 49)) (* buffered clears *)))
    (fun ((present, sels), extra, clears) ->
      let present = List.sort_uniq compare present in
      let extra = List.sort_uniq compare extra in
      let clears = List.sort_uniq compare clears in
      let merged =
        List.filter (fun i -> not (List.mem i clears)) present @ extra
        |> List.sort_uniq compare |> List.map key
      in
      with_cluster (fun cluster ->
          let db = Cluster.client cluster ~name:"sel-ryw" in
          let* () = populate db present in
          Client.run db (fun tx ->
              List.iter (fun i -> Client.set tx (key i) "buffered") extra;
              List.iter (fun i -> Client.clear tx (key i)) clears;
              let rec go = function
                | [] -> Future.return true
                | spec :: rest ->
                    let sel = selector_of spec in
                    let* k = Client.get_key tx sel in
                    let expected = model_resolve merged sel in
                    if k = expected then go rest
                    else begin
                      Printf.printf
                        "RYW selector {%S or_equal=%b offset=%d}: got %S, model %S\n"
                        sel.Client.Key_selector.sel_key sel.sel_or_equal
                        sel.sel_offset k expected;
                      Future.return false
                    end
              in
              let* ok = go sels in
              (* Abandon the transaction: the buffered writes were props. *)
              Future.return ok)))

(* ---------- streaming with continuation stitching ---------- *)

let stream_all ?(reverse = false) tx ~from ~until =
  let batches = ref 0 in
  let rec scan ?continuation acc =
    let* b = Client.get_range_stream ~reverse ?continuation tx ~from ~until () in
    incr batches;
    let acc = List.rev_append b.Client.batch_rows acc in
    match b.Client.batch_continuation with
    | Some c -> scan ~continuation:c acc
    | None -> Future.return (List.rev acc, !batches)
  in
  scan []

let qcheck_stream_model =
  QCheck.Test.make
    ~name:"continuation-stitched stream matches reference (with RYW)" ~count:6
    (QCheck.make
       QCheck.Gen.(
         triple
           (list_size (int_range 10 40) (int_range 0 60)) (* population *)
           (pair (int_range 0 60) (int_range 0 60)) (* scan bounds *)
           (triple
              (list_size (int_range 0 6) (int_range 0 70)) (* RYW sets *)
              (list_size (int_range 0 6) (int_range 0 60)) (* RYW clears *)
              bool (* reverse *))))
    (fun (present, (a, b), (sets, clears, reverse)) ->
      let present = List.sort_uniq compare present in
      let lo, hi = (key (min a b), key (max a b + 1)) in
      let model =
        let base =
          List.fold_left (fun m i -> M.add (key i) (value i) m) M.empty present
        in
        List.fold_left
          (fun m i -> M.remove (key i) m)
          (List.fold_left (fun m i -> M.add (key i) "buffered" m) base sets)
          clears
        |> M.bindings
        |> List.filter (fun (k, _) -> lo <= k && k < hi)
      in
      let model = if reverse then List.rev model else model in
      (* A tiny per-round-trip byte budget forces the scan through many
         stitched batches. *)
      let saved = !Params.range_bytes_per_req in
      Params.range_bytes_per_req := 48;
      Fun.protect
        ~finally:(fun () -> Params.range_bytes_per_req := saved)
        (fun () ->
          with_cluster (fun cluster ->
              let db = Cluster.client cluster ~name:"stream" in
              let* () = populate db present in
              Client.run db (fun tx ->
                  List.iter (fun i -> Client.set tx (key i) "buffered") sets;
                  List.iter (fun i -> Client.clear tx (key i)) clears;
                  let* rows, _batches = stream_all ~reverse tx ~from:lo ~until:hi in
                  if rows = model then Future.return true
                  else begin
                    Printf.printf
                      "stream [%S,%S) reverse=%b: got %d rows, model %d\n" lo hi
                      reverse (List.length rows) (List.length model);
                    Future.return false
                  end))))

let test_stream_stitches_batches () =
  (* Deterministic check that the tiny budget really splits the scan. *)
  let saved = !Params.range_bytes_per_req in
  Params.range_bytes_per_req := 48;
  Fun.protect
    ~finally:(fun () -> Params.range_bytes_per_req := saved)
    (fun () ->
      let rows, batches =
        with_cluster (fun cluster ->
            let db = Cluster.client cluster ~name:"stitch" in
            let present = List.init 40 Fun.id in
            let* () = populate db present in
            Client.run db (fun tx -> stream_all tx ~from:"rp/" ~until:"rp0"))
      in
      Alcotest.(check int) "all rows" 40 (List.length rows);
      Alcotest.(check bool)
        (Printf.sprintf "scan was stitched from several batches (%d)" batches)
        true (batches > 3))

(* ---------- failover under buggified storage replies ---------- *)

let test_failover_identical_data () =
  let expected = List.init 60 (fun i -> (key i, value i)) in
  let ok, flaky_fired, failovers =
    (* Seed chosen so the "ss_flaky_range" buggify point is enabled: range
       replies randomly reject with Process_behind and the client must
       fail over to another replica without changing the result. *)
    with_cluster ~seed:3L ~buggify:true (fun cluster ->
        let db = Cluster.client cluster ~name:"failover" in
        let* () = populate db (List.init 60 Fun.id) in
        let rec reads n ok =
          if n = 0 then Future.return ok
          else
            let* rows =
              Client.run db (fun tx ->
                  Client.get_range tx ~limit:100 ~from:"rp/" ~until:"rp0" ())
            in
            reads (n - 1) (ok && rows = expected)
        in
        let* ok = reads 20 true in
        Future.return
          ( ok,
            List.mem "ss_flaky_range" (Buggify.points_hit ()),
            Trace.count "client_read_failover" ))
  in
  Alcotest.(check bool) "every buggified read returned identical data" true ok;
  if flaky_fired then
    Alcotest.(check bool)
      (Printf.sprintf "failover happened (%d)" failovers)
      true (failovers > 0)

(* ---------- shard-map change mid-read (regression) ---------- *)

let test_shard_move_mid_read () =
  (* A wide range read is in flight when every shard's team is reassigned
     from its highest-id member to its lowest-id member. The stale
     fragments hit Wrong_shard, must re-resolve against the live map, and
     the read must come back complete — the pre-fix behavior silently
     truncated (no covers check) or failed outright. *)
  let expected = List.init 80 (fun i -> (key i, value i)) in
  let rows, re_resolves =
    with_cluster ~seed:5L (fun cluster ->
        let ctx = Cluster.context cluster in
        let sm = ctx.Context.shard_map in
        let db = Cluster.client cluster ~name:"mover" in
        let* () = populate db (List.init 80 Fun.id) in
        (* Let every replica drain the log before we touch the map: storage
           servers only apply mutations for shards they currently serve, so
           pinning too early would silently un-replicate the data. *)
        let* () = Engine.sleep 1.0 in
        let teams = Array.map (fun t -> t) (Shard_map.tag_teams sm) in
        (* Pin every shard to its highest-id member... *)
        Array.iteri
          (fun s team ->
            Shard_map.set_team sm ~shard:s
              ~team:[ List.fold_left max (List.hd team) team ])
          teams;
        let tx = Client.begin_tx db in
        (* Resolve the snapshot up front so starting the read issues the
           per-shard sub-reads synchronously, against the pinned teams... *)
        let* (_ : Types.version * Types.epoch) = Client.read_snapshot tx in
        let read = Client.get_range tx ~limit:200 ~from:"rp/" ~until:"rp0" () in
        (* ...and yank every shard to the lowest-id member while those
           requests are on the wire. Both members held the data from the
           start (set_team models no data movement), so the servers the
           client is still talking to answer Wrong_shard. *)
        Array.iteri
          (fun s team ->
            Shard_map.set_team sm ~shard:s
              ~team:[ List.fold_left min (List.hd team) team ])
          teams;
        let* rows = read in
        if rows <> expected then
          Printf.printf
            "got %d rows (expected %d); first miss: %s; re_resolve=%d set_team=%d failover=%d\n"
            (List.length rows) (List.length expected)
            (match
               List.find_opt (fun (k, _) -> not (List.mem_assoc k rows)) expected
             with
            | Some (k, _) -> k
            | None -> "<extra rows>")
            (Trace.count "client_range_re_resolve")
            (Trace.count "shard_map_update")
            (Trace.count "client_read_failover");
        Future.return (rows, Trace.count "client_range_re_resolve"))
  in
  Alcotest.(check bool) "no rows lost across the shard move" true (rows = expected);
  Alcotest.(check bool)
    (Printf.sprintf "the stale fragments re-resolved (%d)" re_resolves)
    true (re_resolves > 0)

(* ---------- transaction options ---------- *)

let test_tx_options () =
  let r =
    with_cluster ~seed:7L (fun cluster ->
        let db = Cluster.client cluster ~name:"opts" in
        let* () = populate db (List.init 30 Fun.id) in
        (* A per-transaction read-byte cap must fail a wide range read. *)
        let* capped =
          Future.catch
            (fun () ->
              let options =
                { Client.default_options with opt_max_read_bytes = Some 40 }
              in
              let* _ =
                Client.run db ~options (fun tx ->
                    Client.get_range tx ~from:"rp/" ~until:"rp0" ())
              in
              Future.return "no-error")
            (function
              | Error.Fdb Error.Transaction_too_large ->
                  Future.return "too-large"
              | e -> Future.fail e)
        in
        (* An overall timeout must cut off a never-finishing body. *)
        let* timed =
          Future.catch
            (fun () ->
              let options =
                { Client.default_options with opt_timeout = Some 0.05 }
              in
              let* () =
                Client.run db ~options (fun _tx -> Engine.sleep 1000.0)
              in
              Future.return "no-error")
            (function
              | Error.Fdb Error.Timed_out -> Future.return "timed-out"
              | e -> Future.fail e)
        in
        (* set_option applies mid-transaction. *)
        let* set_opt =
          Client.run db (fun tx ->
              Client.set_option tx
                { Client.default_options with opt_max_read_bytes = Some 40 };
              Future.catch
                (fun () ->
                  let* _ = Client.get_range tx ~from:"rp/" ~until:"rp0" () in
                  Future.return "no-error")
                (function
                  | Error.Fdb Error.Transaction_too_large ->
                      Future.return "too-large"
                  | e -> Future.fail e))
        in
        Future.return [ capped; timed; set_opt ])
  in
  Alcotest.(check (list string))
    "options enforced"
    [ "too-large"; "timed-out"; "too-large" ]
    r

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_selector_storage;
    QCheck_alcotest.to_alcotest qcheck_selector_ryw;
    QCheck_alcotest.to_alcotest qcheck_stream_model;
    Alcotest.test_case "tiny byte budget stitches batches" `Quick
      test_stream_stitches_batches;
    Alcotest.test_case "failover returns identical data" `Quick
      test_failover_identical_data;
    Alcotest.test_case "shard move mid-read re-resolves" `Quick
      test_shard_move_mid_read;
    Alcotest.test_case "tx options are enforced" `Quick test_tx_options;
  ]
