(* Geo-replication (paper §3), in the synchronous-replication configuration:
   machines interleave across three regions (the third hosting the
   tie-breaking coordinators, as the paper suggests for some deployments),
   log and storage teams span regions, and when a whole region dies the
   §2.4.4 recovery performs an automatic failover onto the survivors with
   no acknowledged data lost. *)

open Fdb_sim
open Fdb_core
open Future.Syntax

let geo_config =
  {
    Config.default with
    Config.machines = 9;
    coordinators = 5;
    proxies = 2;
    resolvers = 1;
    log_servers = 3;
    storage_per_machine = 1;
    log_replication = 3;
    storage_replication = 3;
    regions = 3;
    racks = 9;
  }

let region_machines cluster dc =
  Array.to_list (Cluster.worker_machines cluster)
  |> List.filter (fun m -> m.Process.dc = dc)

let test_commit_pays_wan_once () =
  (* Synchronous cross-region replication: commits must wait for remote log
     replicas, so commit latency is at least one WAN round trip; reads stay
     local and fast. *)
  let commit_lat, read_lat =
    Engine.run ~seed:31L ~max_time:1e5 (fun () ->
        let cluster = Cluster.create ~config:geo_config () in
        let* () = Cluster.wait_ready cluster in
        let db = Cluster.client cluster ~name:"geo" in
        let* _ = Client.run db (fun tx -> Client.set tx "warm" "up"; Future.return ()) in
        let t0 = Engine.now () in
        let* _ =
          Client.run db (fun tx ->
              Client.set tx "geo/k" "v";
              Future.return ())
        in
        let commit_lat = Engine.now () -. t0 in
        let t1 = Engine.now () in
        let* _ = Client.run db (fun tx -> Client.get tx "geo/k") in
        let read_lat = Engine.now () -. t1 in
        Future.return (commit_lat, read_lat))
  in
  Alcotest.(check bool) "commit crosses the WAN" true (commit_lat >= 0.03);
  Alcotest.(check bool) "commit is not many WAN trips" true (commit_lat < 0.5);
  Alcotest.(check bool) "read can stay local-ish" true (read_lat < commit_lat)

let test_region_failover () =
  let r =
    Engine.run ~seed:32L ~max_time:1e5 (fun () ->
        let cluster = Cluster.create ~config:geo_config () in
        let* () = Cluster.wait_ready cluster in
        let db = Cluster.client cluster ~name:"geo" in
        let* _ =
          Client.run db (fun tx ->
              for i = 0 to 29 do
                Client.set tx (Printf.sprintf "geo/%02d" i) "before"
              done;
              Future.return ())
        in
        (* The primary region dies entirely — and stays dead. *)
        List.iter Fault_injector.kill_machine (region_machines cluster "dc1");
        let* () = Cluster.wait_ready ~timeout:90.0 cluster in
        let* rows =
          Client.run db (fun tx ->
              Client.get_range tx ~limit:100 ~from:"geo/" ~until:"geo0" ())
        in
        let* _ =
          Client.run db (fun tx ->
              Client.set tx "geo/after" "survived";
              Future.return ())
        in
        let* after = Client.run db (fun tx -> Client.get tx "geo/after") in
        (* Region heals: the cluster reabsorbs it and replicas reconverge. *)
        List.iter
          (fun m -> Fdb_sim.Fault_injector.reboot_machine ~delay:0.5 m)
          (region_machines cluster "dc1");
        let* () = Engine.sleep 20.0 in
        let* consistency = Fdb_workloads.Consistency_check.check cluster in
        Future.return (List.length rows, after, consistency))
  in
  let rows, after, consistency = r in
  Alcotest.(check int) "no acknowledged write lost in failover" 30 rows;
  Alcotest.(check (option string)) "writes work after failover" (Some "survived") after;
  (match consistency with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("replicas diverged after region heal: " ^ m))

let test_storage_teams_span_regions () =
  Engine.run ~seed:33L ~max_time:1e4 (fun () ->
      let cluster = Cluster.create ~config:geo_config () in
      let ctx = Cluster.context cluster in
      let teams = Shard_map.tag_teams ctx.Context.shard_map in
      let dc_of ss = Config.region_of_machine geo_config (ss / geo_config.Config.storage_per_machine) in
      Array.iter
        (fun team ->
          let dcs = List.sort_uniq compare (List.map dc_of team) in
          Alcotest.(check bool) "team spans >= 2 regions" true (List.length dcs >= 2))
        teams;
      Future.return ())

let suite =
  [
    Alcotest.test_case "commit pays WAN once" `Quick test_commit_pays_wan_once;
    Alcotest.test_case "region failover" `Quick test_region_failover;
    Alcotest.test_case "teams span regions" `Quick test_storage_teams_span_regions;
  ]
