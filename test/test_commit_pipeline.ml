(* The pipelined proxy commit path (overlapping in-flight batches):

   - qcheck property: for a generated workload of concurrent blind-write
     bursts plus a deterministic conflict gadget, running with pipeline
     depth 4 yields byte-for-byte the same client outcomes and the same
     final storage contents as the serial path (depth 1) on the same seed;
   - buggify reorder regression: with `proxy_slow_commit` and
     `tlog_slow_sync` active, batch completion is reordered mid-pipeline,
     yet Seq_report traces stay LSN-ordered, the proxy KCV stays monotone,
     and every transaction gets exactly one reply;
   - mid-pipeline push failure: a LogServer killed while several batches
     are in flight must fail the epoch — outcomes in submission order are
     a prefix of successes followed only by failures, with at least one
     `Commit_unknown_result` (a batch whose durability the client cannot
     know). *)

open Fdb_sim
open Fdb_core
open Future.Syntax

let with_params ~depth ~batch body =
  let saved_depth = !Params.proxy_commit_pipeline_depth in
  let saved_batch = !Params.max_commit_batch in
  Params.proxy_commit_pipeline_depth := depth;
  Params.max_commit_batch := batch;
  Fun.protect
    ~finally:(fun () ->
      Params.proxy_commit_pipeline_depth := saved_depth;
      Params.max_commit_batch := saved_batch)
    body

let with_cluster ?(seed = 11L) ?(buggify = false) ?(config = Config.test_small)
    body =
  Engine.run ~seed ~max_time:1e5 ~buggify (fun () ->
      let cluster = Cluster.create ~config () in
      let* () = Cluster.wait_ready cluster in
      body cluster)

(* ---------- serial-vs-pipelined equivalence (qcheck) ---------- *)

type outcome = Committed | Failed of string

let outcome_of_exn = function
  | Error.Fdb e -> Failed (Error.to_string e)
  | e -> Failed (Printexc.to_string e)

let key burst i = Printf.sprintf "cp/%02d/%03d" burst i
let value v = Printf.sprintf "v%05d" v

(* Run one generated workload: bursts of concurrent blind writes to
   pairwise-distinct keys (every one must commit; concurrency exercises
   the pipeline), then a read-write conflict gadget whose outcome is
   schedule-independent: t1 snapshots "cp/gadget", t2 overwrites it and
   commits, then t1 writes it — t1 must always lose. Returns the outcome
   list (submission order) and the full final contents of the test
   keyspace. *)
let run_workload ~depth ~seed (bursts : (int list) list) =
  with_params ~depth ~batch:4 (fun () ->
      with_cluster ~seed (fun cluster ->
          let db = Cluster.client cluster ~name:"equiv" in
          let burst_outcomes b ops =
            let futs =
              List.mapi
                (fun i v ->
                  let tx = Client.begin_tx db in
                  Client.set tx (key b i) (value v);
                  Future.catch
                    (fun () ->
                      let* (_ : Types.version) = Client.commit tx in
                      Future.return Committed)
                    (fun e -> Future.return (outcome_of_exn e)))
                ops
            in
            Future.all futs
          in
          let rec go b acc = function
            | [] -> Future.return (List.rev acc)
            | ops :: rest ->
                let* outs = burst_outcomes b ops in
                go (b + 1) (outs :: acc) rest
          in
          let* burst_outs = go 0 [] bursts in
          (* Conflict gadget. *)
          let t1 = Client.begin_tx db in
          let* (_ : string option) = Client.get t1 "cp/gadget" in
          let t2 = Client.begin_tx db in
          Client.set t2 "cp/gadget" "winner";
          let* (_ : Types.version) = Client.commit t2 in
          Client.set t1 "cp/gadget" "loser";
          let* gadget =
            Future.catch
              (fun () ->
                let* (_ : Types.version) = Client.commit t1 in
                Future.return Committed)
              (fun e -> Future.return (outcome_of_exn e))
          in
          (* Let storage drain the log, then read the final state back. *)
          let* () = Engine.sleep 1.0 in
          let* final =
            Client.run db (fun tx ->
                Client.get_range tx ~limit:10_000 ~from:"cp/" ~until:"cp0" ())
          in
          Future.return (List.concat burst_outs @ [ gadget ], final)))

let gen_bursts =
  QCheck.Gen.(
    list_size (int_range 1 3)
      (list_size (int_range 1 10) (int_range 0 99_999)))

let qcheck_equivalence =
  QCheck.Test.make
    ~name:"pipelined commits match serial replies and storage state" ~count:4
    (QCheck.make gen_bursts)
    (fun bursts ->
      let serial = run_workload ~depth:1 ~seed:17L bursts in
      let pipelined = run_workload ~depth:4 ~seed:17L bursts in
      let outcomes_s, final_s = serial in
      let outcomes_p, final_p = pipelined in
      if outcomes_s <> outcomes_p then begin
        Printf.printf "outcome mismatch: serial %d vs pipelined %d entries\n"
          (List.length outcomes_s) (List.length outcomes_p);
        false
      end
      else if final_s <> final_p then begin
        Printf.printf "final state mismatch: %d vs %d rows\n"
          (List.length final_s) (List.length final_p);
        false
      end
      else
        (* The gadget must have lost deterministically, not by luck. *)
        List.nth outcomes_s (List.length outcomes_s - 1)
        = Failed (Error.to_string Error.Not_committed))

(* ---------- buggify reorder regression ---------- *)

let int64_nondecreasing l =
  let rec go = function
    | a :: (b :: _ as tl) -> if Int64.compare a b <= 0 then go tl else false
    | _ -> true
  in
  go l

let trace_int64s name field =
  List.filter_map
    (fun (e : Trace.event) ->
      if e.Trace.te_name = name then
        Option.map Int64.of_string (List.assoc_opt field e.Trace.te_fields)
      else None)
    (Trace.events ())

let test_buggify_reorder_keeps_order () =
  (* Depth 4, tiny batches, buggify on: `proxy_slow_commit` stalls random
     batches so later ones overtake them at the resolver and the logs
     (parking), and `tlog_slow_sync` shuffles durability timing. The
     in-order completion stage must still deliver Seq_reports in LSN order
     and keep the KCV monotone. Seed chosen so the slow-commit point
     actually fires. *)
  let replied, reports, done_lsns, done_kcvs, parked, slow_fired =
    with_params ~depth:4 ~batch:4 (fun () ->
        with_cluster ~seed:9L ~buggify:true (fun cluster ->
            let db = Cluster.client cluster ~name:"reorder" in
            let n = 120 in
            let futs =
              List.init n (fun i ->
                  let tx = Client.begin_tx db in
                  Client.set tx (Printf.sprintf "ro/%03d" i) (string_of_int i);
                  Future.catch
                    (fun () ->
                      let* (_ : Types.version) = Client.commit tx in
                      Future.return true)
                    (fun _ -> Future.return true))
            in
            let* replies = Future.all futs in
            Future.return
              ( List.length (List.filter Fun.id replies),
                trace_int64s "seq_report" "lsn",
                trace_int64s "proxy_commit_done" "lsn",
                trace_int64s "proxy_commit_done" "kcv",
                Trace.count "resolver_park" + Trace.count "tlog_park",
                List.mem "proxy_slow_commit" (Buggify.points_hit ()) )))
  in
  Alcotest.(check int) "every transaction got exactly one reply" 120 replied;
  Alcotest.(check bool) "slow-commit buggify point fired" true slow_fired;
  Alcotest.(check bool)
    (Printf.sprintf "batches overlapped (%d parked out-of-order arrivals)" parked)
    true (parked > 0);
  Alcotest.(check bool)
    (Printf.sprintf "Seq_reports LSN-ordered (%d reports)" (List.length reports))
    true
    (int64_nondecreasing reports);
  Alcotest.(check bool) "commit-done LSNs in order" true
    (int64_nondecreasing done_lsns);
  Alcotest.(check bool) "proxy KCV monotone" true (int64_nondecreasing done_kcvs)

(* ---------- mid-pipeline push failure ---------- *)

let find_processes cluster prefix =
  Array.to_list (Cluster.worker_machines cluster)
  |> List.concat_map (fun m -> m.Process.machine_processes)
  |> List.filter (fun p ->
         p.Process.alive
         && String.length p.Process.name >= String.length prefix
         && String.sub p.Process.name 0 (String.length prefix) = prefix)

let test_push_failure_fails_later_batches () =
  (* Several small batches in flight when a LogServer dies: its pushes
     stop acking, the epoch must end, and no batch later than the first
     failed one may report success — clients see a prefix of commits,
     then only failures, at least one of them Commit_unknown_result
     (in-flight batches whose durability is undecided). *)
  let outcomes =
    with_params ~depth:4 ~batch:2 (fun () ->
        with_cluster ~seed:21L (fun cluster ->
            let db = Cluster.client cluster ~name:"pushfail" in
            (* A first committed marker proves the cluster worked. *)
            let* (_ : Types.version) =
              let tx = Client.begin_tx db in
              Client.set tx "pf/marker" "1";
              Client.commit tx
            in
            let outcomes : (int * outcome) list ref = ref [] in
            let submit i =
              let tx = Client.begin_tx db in
              Client.set tx (Printf.sprintf "pf/%03d" i) (string_of_int i);
              Future.catch
                (fun () ->
                  let* (_ : Types.version) = Client.commit tx in
                  outcomes := (i, Committed) :: !outcomes;
                  Future.return ())
                (fun e ->
                  outcomes := (i, outcome_of_exn e) :: !outcomes;
                  Future.return ())
            in
            (* Steady drip of commits, one per half batch interval, so
               batches form continuously; kill a log mid-stream. *)
            let n = 60 in
            let rec drip i acc =
              if i = n then Future.return acc
              else begin
                if i = 20 then
                  (match find_processes cluster "tlog" with
                  | p :: _ -> Engine.kill p
                  | [] -> Alcotest.fail "no tlog process found");
                let f = submit i in
                let* () = Engine.sleep (!Params.commit_batch_interval /. 2.0) in
                drip (i + 1) (f :: acc)
              end
            in
            let* futs = drip 0 [] in
            let* () = Future.all_unit futs in
            Future.return (List.rev !outcomes)))
  in
  (* Evaluate in submission order. *)
  let by_submission =
    List.sort (fun (a, _) (b, _) -> compare a b) outcomes
  in
  let states = List.map snd by_submission in
  let committed = List.filter (fun o -> o = Committed) states in
  let unknown =
    List.filter
      (fun o -> o = Failed (Error.to_string Error.Commit_unknown_result))
      states
  in
  Alcotest.(check bool)
    (Printf.sprintf "some commits succeeded before the kill (%d)"
       (List.length committed))
    true
    (List.length committed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "at least one Commit_unknown_result (%d)"
       (List.length unknown))
    true
    (List.length unknown > 0);
  (* Prefix property: after the first failure no later submission may have
     committed — a failed batch fails every later in-flight batch. *)
  let rec prefix_ok seen_failure = function
    | [] -> true
    | Committed :: tl -> if seen_failure then false else prefix_ok false tl
    | Failed _ :: tl -> prefix_ok true tl
  in
  Alcotest.(check bool) "successes form a prefix of the submission order" true
    (prefix_ok false states)

(* ---------- obs: pipeline metrics exist ---------- *)

let test_pipeline_metrics_registered () =
  let inflight, queue_depth, resolve_n, logpush_n, commit_n =
    with_params ~depth:4 ~batch:8 (fun () ->
        with_cluster ~seed:13L (fun cluster ->
            let db = Cluster.client cluster ~name:"metrics" in
            let* () =
              Future.all_unit
                (List.init 40 (fun i ->
                     let tx = Client.begin_tx db in
                     Client.set tx (Printf.sprintf "m/%02d" i) "x";
                     let* (_ : Types.version) = Client.commit tx in
                     Future.return ()))
            in
            let reg = (Cluster.context cluster).Context.metrics in
            let module R = Fdb_obs.Registry in
            let hist_count name =
              List.fold_left
                (fun acc (_, h) -> acc + Fdb_util.Histogram.count h)
                0
                (R.histograms reg ~role:R.Proxy name)
            in
            Future.return
              ( R.gauges reg ~role:R.Proxy "commit_inflight_batches",
                R.gauges reg ~role:R.Proxy "commit_queue_depth",
                hist_count "commit_resolve_latency",
                hist_count "commit_logpush_latency",
                hist_count "commit_latency" )))
  in
  Alcotest.(check bool) "commit_inflight_batches gauge registered" true
    (inflight <> []);
  Alcotest.(check bool) "commit_queue_depth gauge registered" true
    (queue_depth <> []);
  Alcotest.(check bool) "per-stage resolve timer recorded" true (resolve_n > 0);
  Alcotest.(check bool) "per-stage logpush timer recorded" true (logpush_n > 0);
  Alcotest.(check bool) "commit_latency still recorded" true (commit_n > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_equivalence;
    Alcotest.test_case "buggify reorder keeps LSN order" `Slow
      test_buggify_reorder_keeps_order;
    Alcotest.test_case "push failure fails later in-flight batches" `Slow
      test_push_failure_fails_later_batches;
    Alcotest.test_case "pipeline metrics registered" `Quick
      test_pipeline_metrics_registered;
  ]
